//! Cross-batch warm residency: consecutive `replay_batch` calls for the
//! same recording elide the prologue when the DRAM dirty log proves the
//! machine's memory unchanged — and the result must be bit-identical to a
//! cold (residency-disabled) replayer on both SKUs (proptest), including:
//!
//! * an adversarial external write that dirties one page of a dump
//!   between batches — exactly that dump re-uploads, everything else
//!   stays elided, outputs stay bit-exact;
//! * a §5.4 fault mid-batch — the recovery reset bumps the dirty-log
//!   epoch, so the *next* batch must drop residency and run the full
//!   prologue;
//! * a dirty-log overflow — verdicts degrade to `Unknown` and the
//!   content-hash fallback either proves the dump unchanged (still
//!   elided) or forces the full prologue on a mismatch.

use std::sync::OnceLock;

use gpureplay::prelude::*;
use gr_gpu::{FaultKind, GpuSku, PteFormat};
use gr_mlfw::cpu_ref;
use gr_mlfw::exec::GpuNetwork;
use gr_sim::SimRng;
use proptest::prelude::*;

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

struct Recorded {
    bytes: Vec<u8>,
    net: GpuNetwork,
}

fn recorded(sku: &'static GpuSku, seed: u64) -> Recorded {
    let dev = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, seed)
        .unwrap();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();
    Recorded {
        bytes,
        net: recs.net,
    }
}

fn mali() -> &'static Recorded {
    static REC: OnceLock<Recorded> = OnceLock::new();
    REC.get_or_init(|| recorded(&sku::MALI_G71, 171))
}

fn v3d() -> &'static Recorded {
    static REC: OnceLock<Recorded> = OnceLock::new();
    REC.get_or_init(|| recorded(&sku::V3D_RPI4, 173))
}

const TEST_DRAM: usize = 32 * 1024 * 1024;

fn make_replayer(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    bytes: &[u8],
    seed: u64,
    residency: bool,
) -> (Replayer, usize, Machine) {
    let machine = Machine::with_dram(sku_ref, seed, TEST_DRAM);
    let environment = Environment::new(env, machine.clone()).unwrap();
    let mut replayer = Replayer::new(environment);
    replayer.set_residency(residency);
    let id = replayer.load_bytes(bytes).unwrap();
    (replayer, id, machine)
}

fn ios_for(replayer: &Replayer, id: usize, inputs: &[Vec<f32>]) -> Vec<ReplayIo> {
    inputs
        .iter()
        .map(|input| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, input).unwrap();
            io
        })
        .collect()
}

/// Replays `batches` on a resident replayer and on a cold one; asserts
/// bit-identical outputs, that residency actually elided prologue work
/// from the second batch on, and that the cold path never elided.
fn check_resident_vs_cold(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    rec: &Recorded,
    batches: &[Vec<Vec<f32>>],
    seed: u64,
) {
    let (mut warm, warm_id, _) = make_replayer(sku_ref, env, &rec.bytes, seed, true);
    let (mut cold, cold_id, _) = make_replayer(sku_ref, env, &rec.bytes, seed ^ 0x5A5A, false);

    for (b, inputs) in batches.iter().enumerate() {
        let mut warm_ios = ios_for(&warm, warm_id, inputs);
        let warm_report = warm.replay_batch(warm_id, &mut warm_ios).unwrap();
        let mut cold_ios = ios_for(&cold, cold_id, inputs);
        let cold_report = cold.replay_batch(cold_id, &mut cold_ios).unwrap();

        assert!(warm_report.amortized && cold_report.amortized);
        assert_eq!(
            cold_report.prologue_skipped, 0,
            "batch {b}: residency disabled must never elide"
        );
        if b == 0 {
            assert_eq!(
                warm_report.prologue_skipped, 0,
                "first batch has no residency to consume"
            );
        } else {
            assert!(
                warm_report.prologue_skipped > 0,
                "batch {b}: steady-state batch must elide prologue work, got {warm_report:?}"
            );
        }
        for (k, (wio, cio)) in warm_ios.iter().zip(&cold_ios).enumerate() {
            let w = wio.output_f32(0).unwrap();
            assert_eq!(
                w,
                cio.output_f32(0).unwrap(),
                "batch {b} element {k}: resident replay diverged from cold replay"
            );
            assert_eq!(
                w,
                cpu_ref::cpu_infer(&rec.net, &inputs[k]),
                "batch {b} element {k}: replay diverged from CPU reference"
            );
        }
    }
    warm.cleanup();
    cold.cleanup();
}

/// Each replayed MNIST inference costs tens of milliseconds in debug
/// builds; cap the campaign so tier-1 stays fast.
const MAX_HEAVY_CASES: usize = 16;

proptest! {
    #[test]
    fn resident_batches_bit_identical_to_cold_on_both_skus(
        n in 1usize..4,
        rounds in 2usize..4,
        seed in 0u64..1_000_000,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASES_RUN: AtomicUsize = AtomicUsize::new(0);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) >= MAX_HEAVY_CASES {
            return;
        }
        for (sku_ref, env, rec) in [
            (&sku::MALI_G71, EnvKind::UserLevel, mali()),
            (&sku::V3D_RPI4, EnvKind::KernelLevel, v3d()),
        ] {
            let batches: Vec<Vec<Vec<f32>>> = (0..rounds)
                .map(|r| {
                    (0..n)
                        .map(|k| random_input(
                            rec.net.input_len(),
                            seed.wrapping_add((r * 31 + k) as u64 * 7919),
                        ))
                        .collect()
                })
                .collect();
            check_resident_vs_cold(sku_ref, env, rec, &batches, seed | 1);
        }
    }
}

/// Resolves the physical address backing GPU VA `va` by walking the
/// family's page tables exactly as the hardware would — the test acts as
/// an external agent writing DRAM behind the replayer's back.
fn gpu_va_to_pa(machine: &Machine, va: u64) -> u64 {
    match machine.sku().family {
        gr_gpu::GpuFamilyKind::Mali => {
            let lo = u64::from(machine.gpu_read32(gr_gpu::mali::regs::AS0_TRANSTAB_LO));
            let hi = u64::from(machine.gpu_read32(gr_gpu::mali::regs::AS0_TRANSTAB_HI));
            let root = lo | (hi << 32);
            let fmt = match machine.sku().pte_format {
                PteFormat::MaliLpae => PteFormat::MaliLpae,
                _ => PteFormat::MaliStandard,
            };
            gr_gpu::mali::pgtable::translate(machine.mem(), fmt, root, va & !0xFFF)
                .expect("dump va must be mapped")
                .0
                + (va & 0xFFF)
        }
        gr_gpu::GpuFamilyKind::V3d => {
            let lo = u64::from(machine.gpu_read32(gr_gpu::v3d::regs::MMU_PT_BASE_LO));
            let hi = u64::from(machine.gpu_read32(gr_gpu::v3d::regs::MMU_PT_BASE_HI));
            let root = lo | (hi << 32);
            gr_gpu::v3d::pgtable::translate(machine.mem(), root, va & !0xFFF)
                .expect("dump va must be mapped")
                .0
                + (va & 0xFFF)
        }
    }
}

/// Per-dump verdict: `(dump_idx, fully_clean, Option<(clean_page_va,
/// chunk_len)>)`.
type DumpCleanliness = Vec<(usize, bool, Option<(u64, usize)>)>;

/// Per-dump page cleanliness across the last batch, checked against
/// `mark` through the public dirty-log API.
fn dump_cleanliness(machine: &Machine, bytes: &[u8], mark: gr_soc::DirtyMark) -> DumpCleanliness {
    let rec = Recording::from_bytes(bytes).unwrap();
    rec.dumps
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let mut fully_clean = true;
            let mut clean_page = None;
            for off in (0..d.bytes.len()).step_by(4096) {
                let va = d.va + off as u64;
                let len = (d.bytes.len() - off).min(4096 - (va as usize & 0xFFF));
                let pa = gpu_va_to_pa(machine, va);
                if machine.mem().dirty_since(mark, pa, len) == gr_soc::DirtyVerdict::Clean {
                    clean_page.get_or_insert((va, len));
                } else {
                    fully_clean = false;
                }
            }
            (i, fully_clean, clean_page)
        })
        .collect()
}

fn dirty_one_page_case(sku_ref: &'static GpuSku, env: EnvKind, rec: &Recorded, seed: u64) {
    let (mut warm, id, machine) = make_replayer(sku_ref, env, &rec.bytes, seed, true);
    let inputs: Vec<Vec<f32>> = (0..2)
        .map(|k| random_input(rec.net.input_len(), seed + k))
        .collect();

    let mut ios = ios_for(&warm, id, &inputs);
    warm.replay_batch(id, &mut ios).unwrap();
    let mark = machine.mem().dirty_mark();
    let mut ios = ios_for(&warm, id, &inputs);
    let steady = warm.replay_batch(id, &mut ios).unwrap();
    assert!(steady.prologue_skipped > 0, "{steady:?}");

    // External agent scribbles one byte into a page the steady-state
    // batch provably kept clean (and therefore elided). Prefer a fully
    // clean dump (its whole upload was skipped); fall back to a clean
    // page of a partially-dirty dump (only its dirty subranges re-upload).
    let lanes = dump_cleanliness(&machine, &rec.bytes, mark);
    let (poke_page_va, _, dump_was_fully_clean) = lanes
        .iter()
        .filter_map(|(_, clean, page)| page.map(|(va, len)| (va, len, *clean)))
        .max_by_key(|&(_, len, clean)| (clean, len))
        .expect("steady-state batches must keep at least one dump page clean");
    // Poke one byte mid-page, off the 64-byte transfer-line grid.
    let poke_va = poke_page_va + 0x7B3;
    let pa = gpu_va_to_pa(&machine, poke_va);
    machine.mem().write(pa, &[0xAB]).unwrap();

    let mut ios = ios_for(&warm, id, &inputs);
    let dirtied = warm.replay_batch(id, &mut ios).unwrap();
    // Only the dirtied range re-uploads — rounded out to the 64-byte
    // transfer line around the poked byte, nothing more.
    assert_eq!(
        dirtied.resident_reupload_bytes,
        steady.resident_reupload_bytes + 64,
        "exactly the dirtied line must re-upload: {dirtied:?} vs {steady:?}"
    );
    if dump_was_fully_clean {
        // The previously fully-elided upload action now runs (partially).
        assert_eq!(
            dirtied.prologue_skipped,
            steady.prologue_skipped - 1,
            "the dirtied dump's upload action must run: {dirtied:?}"
        );
    } else {
        assert_eq!(dirtied.prologue_skipped, steady.prologue_skipped);
    }
    // The re-upload restored the dump bytes: outputs stay bit-exact.
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k} corrupted by the external write"
        );
    }
    warm.cleanup();
}

#[test]
fn dirtied_dump_page_triggers_reupload_of_that_range_only_mali() {
    dirty_one_page_case(&sku::MALI_G71, EnvKind::UserLevel, mali(), 7100);
}

#[test]
fn dirtied_dump_page_triggers_reupload_of_that_range_only_v3d() {
    dirty_one_page_case(&sku::V3D_RPI4, EnvKind::KernelLevel, v3d(), 7200);
}

/// A §5.4 fault mid-batch resets the GPU, which bumps the dirty-log
/// epoch: the faulted batch still completes bit-exactly (recovery), and
/// the *next* batch must run the full prologue (residency dropped).
#[test]
fn fault_rewarm_drops_residency() {
    let rec = mali();
    let (mut warm, id, machine) =
        make_replayer(&sku::MALI_G71, EnvKind::UserLevel, &rec.bytes, 91, true);
    let inputs: Vec<Vec<f32>> = (0..2)
        .map(|k| random_input(rec.net.input_len(), 900 + k))
        .collect();

    let mut ios = ios_for(&warm, id, &inputs);
    warm.replay_batch(id, &mut ios).unwrap();
    // Armed glitch: fires on the next started job — inside the next
    // batch's suffix, after the residency decision already elided the
    // prologue.
    machine.inject_fault(FaultKind::OfflineCores { mask: 0xFF });
    let mut ios = ios_for(&warm, id, &inputs);
    let faulted = warm.replay_batch(id, &mut ios).unwrap();
    assert!(faulted.prologue_skipped > 0, "{faulted:?}");
    assert!(faulted.retries >= 1, "the glitch must force §5.4 recovery");
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k} poisoned by mid-batch recovery"
        );
    }

    // The recovery reset invalidated the warm anchor: full prologue.
    let mut ios = ios_for(&warm, id, &inputs);
    let after = warm.replay_batch(id, &mut ios).unwrap();
    assert_eq!(
        after.prologue_skipped, 0,
        "a §5.4 re-warm must drop residency: {after:?}"
    );
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input)
        );
    }
    warm.cleanup();
}

/// Overflowing the dirty log degrades every verdict to `Unknown`; the
/// hash fallback proves untouched dumps unchanged (still elided) and
/// catches a real change (that dump re-uploads in full and heals),
/// bit-exact either way.
#[test]
fn log_overflow_falls_back_to_hash_check() {
    let rec = mali();
    let (mut warm, id, machine) =
        make_replayer(&sku::MALI_G71, EnvKind::UserLevel, &rec.bytes, 93, true);
    let inputs: Vec<Vec<f32>> = (0..2)
        .map(|k| random_input(rec.net.input_len(), 930 + k))
        .collect();

    let mut ios = ios_for(&warm, id, &inputs);
    warm.replay_batch(id, &mut ios).unwrap();
    let mark = machine.mem().dirty_mark();
    let mut ios = ios_for(&warm, id, &inputs);
    let steady = warm.replay_batch(id, &mut ios).unwrap();
    assert!(steady.prologue_skipped > 0, "{steady:?}");
    // Identify a provably-clean dump while the log can still answer.
    let parsed = Recording::from_bytes(&rec.bytes).unwrap();
    let (dump_va, dump_len) = dump_cleanliness(&machine, &rec.bytes, mark)
        .into_iter()
        .filter(|(_, clean, _)| *clean)
        .map(|(i, _, _)| (parsed.dumps[i].va, parsed.dumps[i].bytes.len()))
        .max_by_key(|&(_, len)| len)
        .expect("the Mali MNIST recording keeps its weights dump clean");

    // Shrink the log so the inter-batch writes always overflow it.
    machine.mem().set_dirty_log_cap(2);
    // Scattered writes to unmapped DRAM: defeat coalescing, force trims.
    let scratch = machine.mem().base() + (TEST_DRAM as u64) - 8 * 4096;
    for i in 0..8u64 {
        machine.mem().write(scratch + i * 4096, &[i as u8]).unwrap();
    }

    let mut ios = ios_for(&warm, id, &inputs);
    let hashed = warm.replay_batch(id, &mut ios).unwrap();
    assert_eq!(
        hashed.prologue_skipped, steady.prologue_skipped,
        "hash fallback must keep unchanged dumps elided: {hashed:?} vs {steady:?}"
    );
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input)
        );
    }

    // Now actually corrupt a clean dump's page while the log is
    // overflowed: the hash mismatch must force that dump's full
    // re-upload (healing the corruption); the rest stays elided.
    let pa = gpu_va_to_pa(&machine, dump_va + dump_len as u64 / 2);
    machine.mem().write(pa, &[0xCD]).unwrap();
    for i in 0..8u64 {
        machine
            .mem()
            .write(scratch + i * 4096, &[0x40 | i as u8])
            .unwrap();
    }
    let mut ios = ios_for(&warm, id, &inputs);
    let mismatched = warm.replay_batch(id, &mut ios).unwrap();
    assert_eq!(
        mismatched.prologue_skipped,
        steady.prologue_skipped - 1,
        "the mismatched dump must re-upload, the rest stays elided: {mismatched:?}"
    );
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k} corrupted despite the hash-mismatch re-upload"
        );
    }
    warm.cleanup();
}
