//! Deterministic stress harness for the `gr-service` scheduler.
//!
//! A seeded `SimRng` generates a virtual-time submit schedule (bursty,
//! steady, and adversarial load shapes) that is driven through the
//! service's lock-step determinism protocol:
//!
//! 1. `pause()` the shard workers,
//! 2. submit the round's burst (admission decisions — `QueueFull`,
//!    expired-at-admission — now depend only on queue state),
//! 3. advance the service clock per the schedule (some queued deadlines
//!    expire),
//! 4. `resume()` + `quiesce()` (the drain runs against a static clock, so
//!    every queued ticket's fate is already decided).
//!
//! Under this protocol every per-ticket outcome is a pure function of the
//! seed: the harness records an outcome string per ticket (completed with
//! an output checksum, queue-full, expired at admission, deadline missed,
//! or a replay fault) and asserts that (a) every ticket resolves exactly
//! once, (b) the shard metrics balance, and (c) replaying the same
//! schedule on a fresh service reproduces the outcome sequence bit for
//! bit — on both SKUs.

use gpureplay::prelude::*;
use gpureplay::service::ServiceStats;
use gr_gpu::GpuSku;
use gr_sim::{SimDuration, SimRng};

const QUEUE_CAP: usize = 8;
const MAX_BATCH: usize = 4;

fn record_vecadd_blob(sku: &'static GpuSku, n: usize, seed: u64) -> Vec<u8> {
    let dev = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(dev).unwrap();
    let rec = harness.record_vecadd(n, 1000, seed).unwrap();
    harness.finish();
    rec.to_bytes()
}

/// Builds a well-formed single-element IO for recording `r` (a vecadd
/// recording with two input slots).
fn io_for(blob: &[u8], seed: u64) -> ReplayIo {
    let rec = Recording::from_bytes(blob).unwrap();
    let mut io = ReplayIo::for_recording(&rec);
    let n = rec.inputs[0].len as usize / 4;
    let mut rng = SimRng::seed_from(seed).fork("stress-input");
    let a: Vec<f32> = (0..n).map(|_| rng.unit_f64() as f32).collect();
    let b: Vec<f32> = (0..n).map(|_| rng.unit_f64() as f32).collect();
    io.set_input_f32(0, &a).unwrap();
    io.set_input_f32(1, &b).unwrap();
    io
}

fn checksum(outputs: &[Vec<u8>]) -> u64 {
    // FNV-1a over every output byte: cheap, deterministic, order-sensitive.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for buf in outputs {
        for &b in buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Shape {
    Steady,
    Bursty,
    Adversarial,
}

/// One scheduled submission.
struct Submit {
    /// 0 or 1: which recording; 2: an unknown id (adversarial).
    recording: usize,
    /// Elements in the request (1 = coalescible).
    elements: usize,
    /// Deadline offset from "now" in nanos; `None` = no deadline,
    /// `Some(0)` = already expired at admission.
    deadline_offset: Option<u64>,
    /// Truncate the first input buffer (validation fault on the ticket).
    malformed: bool,
    /// Input seed.
    seed: u64,
}

struct Round {
    submits: Vec<Submit>,
    advance: SimDuration,
}

/// Draws the whole schedule up front so both runs consume identical
/// randomness.
fn make_schedule(shape: Shape, seed: u64, rounds: usize) -> Vec<Round> {
    let mut rng = SimRng::seed_from(seed).fork("stress-schedule");
    (0..rounds)
        .map(|r| {
            let burst = match shape {
                Shape::Steady => rng.range_u64(1, 4) as usize,
                Shape::Bursty => {
                    if r % 2 == 0 {
                        rng.range_u64(8, 13) as usize // overflows QUEUE_CAP
                    } else {
                        rng.range_u64(0, 2) as usize
                    }
                }
                Shape::Adversarial => rng.range_u64(4, 13) as usize,
            };
            // Every round advances at least 2 ms so "tight" deadlines
            // (1 ms) always expire in the queue and "generous" ones
            // (advance + 1 s) never do.
            let advance = SimDuration::from_millis(rng.range_u64(2, 10));
            let submits = (0..burst)
                .map(|_| {
                    let adversarial = shape == Shape::Adversarial;
                    let recording = if adversarial && rng.chance(0.05) {
                        2 // unknown id: a fault on the ticket
                    } else {
                        rng.range_u64(0, 2) as usize
                    };
                    let deadline_offset = match rng.range_u64(0, 4) {
                        0 => None,
                        1 if adversarial => Some(0), // expired at admission
                        2 => Some(SimDuration::from_millis(1).as_nanos()), // expires queued
                        _ => Some((advance + SimDuration::from_secs(1)).as_nanos()),
                    };
                    Submit {
                        recording,
                        elements: if adversarial && rng.chance(0.2) { 2 } else { 1 },
                        deadline_offset,
                        malformed: adversarial && rng.chance(0.1),
                        seed: rng.next_u64(),
                    }
                })
                .collect();
            Round { submits, advance }
        })
        .collect()
}

/// Runs `schedule` against a fresh one-worker-per-shard service and
/// returns the per-ticket outcome strings plus the final shard stats.
fn run_schedule(
    sku: &'static GpuSku,
    env: EnvKind,
    blobs: &[Vec<u8>],
    schedule: &[Round],
) -> (Vec<String>, ServiceStats) {
    use gpureplay::service::ServiceError;

    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(sku, env, blobs.to_vec())
                .queue_cap(QUEUE_CAP)
                .max_batch(MAX_BATCH),
        )
        .spawn()
        .unwrap();
    let clock = service.clock();
    clock.advance(SimDuration::from_millis(1)); // move off t=0

    let mut outcomes = Vec::new();
    for round in schedule {
        service.pause();
        let mut tickets = Vec::new();
        for s in &round.submits {
            let blob = blobs.get(s.recording).unwrap_or(&blobs[0]);
            let mut ios: Vec<ReplayIo> = (0..s.elements)
                .map(|k| io_for(blob, s.seed.wrapping_add(k as u64)))
                .collect();
            if s.malformed {
                ios[0].inputs[0] = vec![0u8; 3];
            }
            let mut req = ReplayRequest::new(s.recording, ios);
            if let Some(off) = s.deadline_offset {
                // Offset 0 encodes "already in the past" (the clock starts
                // 1 ms after SimTime::ZERO, so ZERO is always expired).
                req = req.deadline(if off == 0 {
                    gr_sim::SimTime::ZERO
                } else {
                    clock.now() + SimDuration::from_nanos(off)
                });
            }
            match service.submit_request(sku.name, req) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::QueueFull { .. }) => outcomes.push("queue-full".to_string()),
                Err(ServiceError::DeadlineExceeded) => {
                    outcomes.push("expired-at-admission".to_string());
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        clock.advance(round.advance);
        service.resume();
        service.quiesce();
        // Every admitted ticket has resolved by now; wait() must never
        // hang (a hang here fails the test via the harness timeout).
        for t in tickets {
            outcomes.push(match t.wait() {
                Ok(outcome) => format!("ok:{:016x}", checksum(&outcome.ios[0].outputs)),
                Err(ServiceError::DeadlineExceeded) => "deadline-missed".to_string(),
                Err(ServiceError::Replay(e)) => format!("fault:{e}"),
                Err(e) => panic!("unexpected ticket error: {e}"),
            });
        }
    }

    let stats = service.stats();
    service.shutdown();
    (outcomes, stats)
}

fn stress_one_sku(sku: &'static GpuSku, env: EnvKind, seed: u64) {
    let blobs = vec![
        record_vecadd_blob(sku, 32, seed),
        record_vecadd_blob(sku, 16, seed + 1),
    ];
    for shape in [Shape::Steady, Shape::Bursty, Shape::Adversarial] {
        let schedule = make_schedule(shape, seed, 6);
        let submitted: usize = schedule.iter().map(|r| r.submits.len()).sum();

        let (outcomes, stats) = run_schedule(sku, env, &blobs, &schedule);

        // (a) Every ticket resolved exactly once.
        assert_eq!(
            outcomes.len(),
            submitted,
            "{shape:?}: every submission must resolve exactly once"
        );
        // (b) The shard metrics balance: nothing queued, nothing in
        // flight, every submission accounted to a terminal outcome.
        let shard = stats.shard(sku.name).unwrap();
        assert_eq!(shard.depth, 0, "{shape:?}: drained");
        assert_eq!(shard.in_flight, 0, "{shape:?}: idle");
        assert_eq!(shard.submitted, submitted as u64, "{shape:?}");
        assert_eq!(shard.resolved(), submitted as u64, "{shape:?}: {shard:?}");
        assert!(shard.is_consistent(), "{shape:?}: {shard:?}");
        let by_kind = |pat: &str| outcomes.iter().filter(|o| o.starts_with(pat)).count() as u64;
        assert_eq!(shard.completed, by_kind("ok:"), "{shape:?}");
        assert_eq!(shard.rejected_full, by_kind("queue-full"), "{shape:?}");
        assert_eq!(
            shard.rejected_expired,
            by_kind("expired-at-admission"),
            "{shape:?}"
        );
        assert_eq!(
            shard.deadline_missed,
            by_kind("deadline-missed"),
            "{shape:?}"
        );
        assert_eq!(shard.faults, by_kind("fault:"), "{shape:?}");
        // The overload shapes must actually exercise shedding, faults,
        // and coalescing, or the test proves nothing.
        if shape != Shape::Steady {
            assert!(
                shard.batch_sizes.len() > 1,
                "{shape:?} never formed a dynamic batch: {shard:?}"
            );
        }
        match shape {
            Shape::Steady => {}
            Shape::Bursty => {
                assert!(shard.rejected_full > 0, "bursty load never overflowed");
            }
            Shape::Adversarial => {
                assert!(shard.faults > 0, "adversarial load never faulted");
                assert!(
                    shard.deadline_missed + shard.rejected_expired > 0,
                    "adversarial load never missed a deadline"
                );
            }
        }

        // (c) Same seed, fresh service: bit-identical outcome sequence
        // (outputs included, via the checksums) and identical metrics.
        let (outcomes2, stats2) = run_schedule(sku, env, &blobs, &schedule);
        assert_eq!(outcomes, outcomes2, "{shape:?}: outcome sequence diverged");
        assert_eq!(
            stats.shard(sku.name),
            stats2.shard(sku.name),
            "{shape:?}: shard metrics diverged"
        );
    }
}

#[test]
fn stress_schedules_are_deterministic_on_mali() {
    stress_one_sku(&sku::MALI_G71, EnvKind::UserLevel, 0xA11CE);
}

#[test]
fn stress_schedules_are_deterministic_on_v3d() {
    stress_one_sku(&sku::V3D_RPI4, EnvKind::KernelLevel, 0xB0B);
}
