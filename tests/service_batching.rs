//! Scheduler-level batching invariants for `gr-service`:
//!
//! * dynamically formed batch outputs are bit-identical to fresh
//!   sequential replays of the same inputs (proptest, both SKUs);
//! * a poisoned element of a dynamically formed batch fails only its own
//!   ticket — batchmates and the subsequent queue drain survive;
//! * a transient mid-batch hardware fault (§5.4) re-warms the worker and
//!   every coalesced ticket still completes bit-exactly;
//! * shutdown either drains or rejects queued tickets — a pending
//!   ticket's `wait()` returns, it never hangs.

use std::sync::OnceLock;

use gpureplay::prelude::*;
use gpureplay::replayer::ReplayError;
use gpureplay::service::ServiceError;
use gr_gpu::{FaultKind, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::exec::GpuNetwork;
use gr_sim::SimRng;
use proptest::prelude::*;

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

struct Recorded {
    bytes: Vec<u8>,
    net: GpuNetwork,
}

fn recorded(sku: &'static GpuSku, seed: u64) -> Recorded {
    let dev = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, seed)
        .unwrap();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();
    Recorded {
        bytes,
        net: recs.net,
    }
}

fn mali() -> &'static Recorded {
    static REC: OnceLock<Recorded> = OnceLock::new();
    REC.get_or_init(|| recorded(&sku::MALI_G71, 141))
}

fn vecadd_blob(sku: &'static GpuSku, seed: u64) -> Vec<u8> {
    let dev = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(dev).unwrap();
    let rec = harness.record_vecadd(48, 1000, seed).unwrap();
    harness.finish();
    rec.to_bytes()
}

fn single_io(blob: &[u8], a: &[f32], b: &[f32]) -> ReplayIo {
    let rec = Recording::from_bytes(blob).unwrap();
    let mut io = ReplayIo::for_recording(&rec);
    io.set_input_f32(0, a).unwrap();
    io.set_input_f32(1, b).unwrap();
    io
}

/// Submits `n` compatible single-input requests to a paused one-worker
/// service, drains them (they coalesce into dynamic batches), and checks
/// every output is bit-identical to a fresh sequential `replay()` of the
/// same input on a cold replayer.
fn check_service_batch_vs_sequential(sku_ref: &'static GpuSku, env: EnvKind, n: usize, seed: u64) {
    let blob = vecadd_blob(sku_ref, 1000 + seed % 17);
    let inputs: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
        .map(|k| {
            let s = seed.wrapping_add(k as u64 * 7919);
            (random_input(48, s), random_input(48, s ^ 0x5A5A))
        })
        .collect();

    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(sku_ref, env, vec![blob.clone()])
                .max_batch(n.max(2))
                .seed(seed | 1),
        )
        .spawn()
        .unwrap();
    service.pause();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|(a, b)| {
            service
                .submit_request(
                    sku_ref.name,
                    ReplayRequest::single(0, single_io(&blob, a, b)),
                )
                .unwrap()
        })
        .collect();
    service.resume();
    service.quiesce();
    let batched: Vec<Vec<f32>> = tickets
        .into_iter()
        .map(|t| {
            let outcome = t.wait().unwrap();
            assert_eq!(
                outcome.report.elements, n,
                "all {n} compatible singles must coalesce into one batch"
            );
            outcome.ios[0].output_f32(0).unwrap()
        })
        .collect();
    service.shutdown();

    // Fresh sequential replays on a cold machine with different jitter.
    let machine = Machine::new(sku_ref, seed ^ 0xBEEF);
    let environment = Environment::new(env, machine).unwrap();
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(&blob).unwrap();
    for (k, (a, b)) in inputs.iter().enumerate() {
        let mut io = single_io(&blob, a, b);
        replayer.replay(id, &mut io).unwrap();
        let fresh = io.output_f32(0).unwrap();
        let want: Vec<f32> = a.iter().zip(b).map(|(x, y)| x + y).collect();
        assert_eq!(
            batched[k], fresh,
            "element {k}: dynamic batch diverged from fresh sequential replay"
        );
        assert_eq!(fresh, want, "element {k}: replay diverged from CPU sum");
    }
    replayer.cleanup();
}

/// Building a service per case is cheap with vecadd, but keep the
/// campaign bounded so tier-1 stays fast.
const MAX_HEAVY_CASES: usize = 12;

proptest! {
    #[test]
    fn formed_batch_outputs_bit_identical_to_sequential(n in 2usize..6, seed in 0u64..1_000_000) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASES_RUN: AtomicUsize = AtomicUsize::new(0);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) >= MAX_HEAVY_CASES {
            return;
        }
        check_service_batch_vs_sequential(&sku::MALI_G71, EnvKind::UserLevel, n, seed | 1);
        check_service_batch_vs_sequential(&sku::V3D_RPI4, EnvKind::KernelLevel, n, seed | 1);
    }
}

/// Poison one element of a dynamically formed batch: only that ticket
/// errors; batchmates keep bit-exact outputs, the worker re-warms, the
/// subsequent queue drain succeeds, and stats count exactly one fault.
#[test]
fn poisoned_element_fails_only_its_own_ticket() {
    let rec = mali();
    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(&sku::MALI_G71, EnvKind::UserLevel, vec![rec.bytes.clone()])
                .max_batch(8),
        )
        .spawn()
        .unwrap();

    let inputs: Vec<Vec<f32>> = (0..5)
        .map(|k| random_input(rec.net.input_len(), 700 + k))
        .collect();
    service.pause();
    let tickets: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(k, input)| {
            let recording = Recording::from_bytes(&rec.bytes).unwrap();
            let mut io = ReplayIo::for_recording(&recording);
            if k == 2 {
                io.inputs[0] = vec![0u8; 3]; // poisoned: wrong byte size
            } else {
                io.set_input_f32(0, input).unwrap();
            }
            service
                .submit_request("G71", ReplayRequest::single(0, io))
                .unwrap()
        })
        .collect();
    service.resume();
    service.quiesce();

    for (k, (t, input)) in tickets.into_iter().zip(&inputs).enumerate() {
        if k == 2 {
            let err = t.wait().unwrap_err();
            assert!(
                matches!(err, ServiceError::Replay(ReplayError::Io(_))),
                "poisoned ticket must fail with its own validation error, got {err}"
            );
        } else {
            let outcome = t.wait().unwrap();
            assert_eq!(
                outcome.report.elements, 5,
                "the poisoned element must still ride the formed batch"
            );
            assert_eq!(
                outcome.ios[0].output_f32(0).unwrap(),
                cpu_ref::cpu_infer(&rec.net, input),
                "batchmate {k} poisoned by element 2's fault"
            );
        }
    }
    let snapshot = service.stats();
    let shard = snapshot.shard("G71").unwrap();
    assert_eq!(shard.faults, 1, "exactly one fault: {shard:?}");
    assert_eq!(shard.completed, 4);
    assert_eq!(shard.batch_sizes, vec![0, 0, 0, 0, 1], "one 5-way batch");

    // The worker survived: a subsequent drain completes cleanly.
    let input = random_input(rec.net.input_len(), 990);
    let recording = Recording::from_bytes(&rec.bytes).unwrap();
    let mut io = ReplayIo::for_recording(&recording);
    io.set_input_f32(0, &input).unwrap();
    let outcome = service.run("G71", 0, vec![io]).unwrap();
    assert_eq!(
        outcome.ios[0].output_f32(0).unwrap(),
        cpu_ref::cpu_infer(&rec.net, &input)
    );
    assert!(service.stats().shard("G71").unwrap().is_consistent());
    service.shutdown();
}

/// A transient hardware fault mid-formed-batch (§5.4): the worker
/// resets, re-warms, retries the failing element, and every coalesced
/// ticket still completes bit-exactly.
#[test]
fn transient_fault_mid_formed_batch_recovers_every_ticket() {
    let rec = mali();
    let service = ReplayService::builder()
        .shard(
            ShardSpec::new(&sku::MALI_G71, EnvKind::UserLevel, vec![rec.bytes.clone()])
                .max_batch(4),
        )
        .spawn()
        .unwrap();

    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|k| random_input(rec.net.input_len(), 800 + k))
        .collect();
    service.pause();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|input| {
            let recording = Recording::from_bytes(&rec.bytes).unwrap();
            let mut io = ReplayIo::for_recording(&recording);
            io.set_input_f32(0, input).unwrap();
            service
                .submit_request("G71", ReplayRequest::single(0, io))
                .unwrap()
        })
        .collect();
    // Armed glitch on the shard's warm machine: the next started job
    // fails once, then clears — it fires inside the formed batch.
    let machines = service.machines("G71").unwrap();
    machines[0].inject_fault(FaultKind::OfflineCores { mask: 0xFF });
    service.resume();
    service.quiesce();

    for (k, (t, input)) in tickets.into_iter().zip(&inputs).enumerate() {
        let outcome = t.wait().unwrap();
        assert!(
            outcome.report.retries >= 1,
            "the glitch must force a §5.4 retry inside the batch"
        );
        assert_eq!(
            outcome.ios[0].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "ticket {k} poisoned by mid-batch recovery"
        );
    }
    let snapshot = service.stats();
    let shard = snapshot.shard("G71").unwrap();
    assert!(shard.retries >= 1, "stats must reflect the re-warm");
    assert_eq!(shard.faults, 0, "a recovered glitch is not a fault");
    assert_eq!(shard.completed, 4);
    service.shutdown();
}

/// Regression (PR 4): queued tickets must never be dropped silently.
/// `shutdown_now` rejects them — `wait()` returns an error, not a hang —
/// and graceful `shutdown` drains them to completion.
#[test]
fn shutdown_drains_or_rejects_pending_tickets() {
    let blob = vecadd_blob(&sku::MALI_G71, 2000);
    let a = random_input(48, 1);
    let b = random_input(48, 2);
    let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();

    // Reject path: pending tickets resolve with ServiceError::Shutdown.
    let service = ReplayService::builder()
        .shard(ShardSpec::new(
            &sku::MALI_G71,
            EnvKind::UserLevel,
            vec![blob.clone()],
        ))
        .spawn()
        .unwrap();
    service.pause();
    let t1 = service
        .submit_request("G71", ReplayRequest::single(0, single_io(&blob, &a, &b)))
        .unwrap();
    let t2 = service
        .submit_request("G71", ReplayRequest::single(0, single_io(&blob, &a, &b)))
        .unwrap();
    let worker_stats = service.shutdown_now();
    assert!(matches!(t1.wait().unwrap_err(), ServiceError::Shutdown));
    assert!(matches!(t2.wait().unwrap_err(), ServiceError::Shutdown));
    assert_eq!(worker_stats[0].jobs, 0, "rejected tickets never ran");

    // Drain path: graceful shutdown completes queued work first.
    let service = ReplayService::builder()
        .shard(ShardSpec::new(
            &sku::MALI_G71,
            EnvKind::UserLevel,
            vec![blob.clone()],
        ))
        .spawn()
        .unwrap();
    service.pause();
    let t = service
        .submit_request("G71", ReplayRequest::single(0, single_io(&blob, &a, &b)))
        .unwrap();
    service.shutdown();
    let outcome = t.wait().unwrap();
    assert_eq!(outcome.ios[0].output_f32(0).unwrap(), want);

    // Drop path: a service dropped without any shutdown call (early
    // return, caller panic) must still reject queued tickets so a
    // pending wait() returns instead of hanging, and wake its workers.
    let service = ReplayService::builder()
        .shard(ShardSpec::new(
            &sku::MALI_G71,
            EnvKind::UserLevel,
            vec![blob.clone()],
        ))
        .spawn()
        .unwrap();
    service.pause();
    let t = service
        .submit_request("G71", ReplayRequest::single(0, single_io(&blob, &a, &b)))
        .unwrap();
    drop(service);
    assert!(matches!(t.wait().unwrap_err(), ServiceError::Shutdown));
}
