//! The two cheapest determinism invariants everything else leans on:
//! seed-stable simulation randomness, and a lossless recording codec.

use gpureplay::prelude::*;
use gr_recording::grz_compress;
use gr_sim::SimRng;

/// Identical seeds must yield identical streams — across raw draws, forks,
/// and every sampling helper — or record/replay comparisons are meaningless.
#[test]
fn simrng_same_seed_identical_streams() {
    let mut a = SimRng::seed_from(1234);
    let mut b = SimRng::seed_from(1234);
    for _ in 0..64 {
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.range_u64(0, 1000), b.range_u64(0, 1000));
        assert_eq!(a.unit_f64().to_bits(), b.unit_f64().to_bits());
        assert_eq!(a.chance(0.5), b.chance(0.5));
    }
    let mut fa = a.fork("taint");
    let mut fb = b.fork("taint");
    let mut buf_a = [0u8; 32];
    let mut buf_b = [0u8; 32];
    fa.fill_bytes(&mut buf_a);
    fb.fill_bytes(&mut buf_b);
    assert_eq!(buf_a, buf_b);
}

/// Pins the actual stream values so the generator cannot silently change
/// between builds: a new RNG would invalidate every stored recording's
/// modeled nondeterminism, so changing these constants must be a conscious,
/// reviewed decision.
#[test]
fn simrng_stream_is_pinned() {
    let mut r = SimRng::seed_from(0xC0FFEE);
    let head: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    assert_eq!(
        head,
        [
            0x8c7615e9af6b4ae5,
            0xd175fd6e7f597969,
            0xac823e0ae898e8ec,
            0x671278cc50163c69,
        ]
    );
    let mut f = SimRng::seed_from(0xC0FFEE).fork("gpu-jitter");
    assert_eq!(f.next_u64(), 0x3adaefde041de8db);
    assert_eq!(f.next_u64(), 0xd760316a4205c4ff);
}

/// Container round-trip: `to_bytes` → `from_bytes` must reproduce the
/// recording exactly — same metadata, same actions — on a real recording
/// produced by the record harness, not a synthetic one.
#[test]
fn recording_container_roundtrip_is_lossless() {
    let dev = Machine::new(&sku::MALI_G71, 77);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 5)
        .unwrap();
    harness.finish();

    for rec in &recs.recordings {
        let bytes = rec.to_bytes();
        let back = Recording::from_bytes(&bytes).unwrap();
        assert_eq!(&back, rec, "decode(encode(r)) != r");
        // Encoding is deterministic, so the round-trip is a fixed point.
        assert_eq!(back.to_bytes(), bytes);
    }
}

/// The same round-trip through the replayer's front door (`load_bytes`):
/// the loaded recording must carry identical replay actions and replay to
/// the same outputs as the in-memory original.
#[test]
fn loaded_recording_replays_identically_to_original() {
    let dev = Machine::new(&sku::MALI_G71, 78);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 6)
        .unwrap();
    let net = recs.net.clone();
    let original = recs.recordings[0].clone();
    let bytes = original.to_bytes();
    harness.finish();

    let input: Vec<f32> = (0..net.input_len())
        .map(|i| (i as f32 * 0.003).sin())
        .collect();
    let mut outputs = Vec::new();
    for from_bytes in [false, true] {
        let target = Machine::new(&sku::MALI_G71, 79);
        let env = Environment::new(EnvKind::UserLevel, target).unwrap();
        let mut replayer = Replayer::new(env);
        let id = if from_bytes {
            replayer.load_bytes(&bytes).unwrap()
        } else {
            replayer.load(original.clone()).unwrap()
        };
        assert_eq!(
            replayer.recording(id).actions,
            original.actions,
            "replay actions must survive the codec"
        );
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &input).unwrap();
        replayer.replay(id, &mut io).unwrap();
        outputs.push(io.output_f32(0).unwrap());
        replayer.cleanup();
    }
    assert_eq!(outputs[0], outputs[1], "codec path changed replay output");
}

/// GRZ compression is deterministic: same payload, same stream. Recordings
/// hashed or diffed by bytes rely on this.
#[test]
fn grz_compression_is_deterministic() {
    let data: Vec<u8> = (0..32_768u32)
        .flat_map(|i| (i % 251).to_le_bytes())
        .collect();
    assert_eq!(grz_compress(&data), grz_compress(&data));
}
