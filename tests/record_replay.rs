//! End-to-end integration: record on the full stack, replay on the tiny
//! replayer, validate §7.2-style correctness.

use gpureplay::prelude::*;
use gr_gpu::FaultKind;
use gr_mlfw::cpu_ref;
use gr_sim::SimRng;

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

/// Record MNIST once, replay it on new inputs, compare against the CPU
/// reference — outputs must be bit-identical (§7.2).
#[test]
fn replay_matches_cpu_reference_on_new_inputs() {
    let dev = Machine::new(&sku::MALI_G71, 1);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 7)
        .unwrap();
    let net = recs.net.clone();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();

    let target = Machine::new(&sku::MALI_G71, 2);
    let env = Environment::new(EnvKind::UserLevel, target).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes).unwrap();

    for seed in [11u64, 12, 13] {
        let input = random_input(net.input_len(), seed);
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &input).unwrap();
        let report = replayer.replay(id, &mut io).unwrap();
        assert_eq!(report.retries, 0);
        assert!(report.jobs > 0);
        let replayed = io.output_f32(0).unwrap();
        let reference = cpu_ref::cpu_infer(&net, &input);
        assert_eq!(replayed, reference, "seed {seed}: bit-identical expected");
    }
    replayer.cleanup();
}

/// The same end-to-end flow on the v3d family (kernel-level replayer).
#[test]
fn v3d_record_replay_roundtrip() {
    let dev = Machine::new(&sku::V3D_RPI4, 3);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 9)
        .unwrap();
    let net = recs.net.clone();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();

    let target = Machine::new(&sku::V3D_RPI4, 4);
    let env = Environment::new(EnvKind::KernelLevel, target).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes).unwrap();
    let input = random_input(net.input_len(), 5);
    let mut io = ReplayIo::for_recording(replayer.recording(id));
    io.set_input_f32(0, &input).unwrap();
    replayer.replay(id, &mut io).unwrap();
    assert_eq!(io.output_f32(0).unwrap(), cpu_ref::cpu_infer(&net, &input));
    replayer.cleanup();
}

/// Per-layer recordings replayed in sequence in one session reproduce the
/// whole network (paper Fig. 4).
#[test]
fn per_layer_recordings_chain_in_one_session() {
    let dev = Machine::new(&sku::MALI_G71, 5);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::PerLayer, 21)
        .unwrap();
    let net = recs.net.clone();
    let blobs: Vec<Vec<u8>> = recs.recordings.iter().map(|r| r.to_bytes()).collect();
    harness.finish();

    let target = Machine::new(&sku::MALI_G71, 6);
    let env = Environment::new(EnvKind::UserLevel, target).unwrap();
    let mut replayer = Replayer::new(env);
    let ids: Vec<usize> = blobs
        .iter()
        .map(|b| replayer.load_bytes(b).unwrap())
        .collect();
    let input = random_input(net.input_len(), 31);
    let mut final_out = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        if i == 0 {
            io.set_input_f32(0, &input).unwrap();
        }
        replayer.replay(id, &mut io).unwrap();
        if i + 1 == ids.len() {
            final_out = io.output_f32(0).unwrap();
        }
    }
    assert_eq!(final_out, cpu_ref::cpu_infer(&net, &input));
    replayer.cleanup();
}

/// TEE and baremetal environments replay the same recording correctly.
#[test]
fn tee_and_baremetal_replay() {
    let dev = Machine::new(&sku::MALI_G71, 7);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 8)
        .unwrap();
    let net = recs.net.clone();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();

    for kind in [EnvKind::Tee, EnvKind::Baremetal] {
        let target = Machine::new(&sku::MALI_G71, 8);
        let env = Environment::new(kind, target).unwrap();
        let mut replayer = Replayer::new(env);
        let id = replayer.load_bytes(&bytes).unwrap();
        let input = random_input(net.input_len(), 17);
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &input).unwrap();
        replayer.replay(id, &mut io).unwrap();
        assert_eq!(
            io.output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&net, &input),
            "{kind}"
        );
        replayer.cleanup();
    }
}

/// §7.2 fault injection: offline cores and corrupted PTEs are detected as
/// state divergences and recovered by re-execution.
#[test]
fn replay_recovers_from_injected_faults() {
    let dev = Machine::new(&sku::MALI_G71, 9);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, 10)
        .unwrap();
    let net = recs.net.clone();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();

    let target = Machine::new(&sku::MALI_G71, 10);
    let env = Environment::new(EnvKind::UserLevel, target.clone()).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes).unwrap();
    let input = random_input(net.input_len(), 23);

    // Fault 1: forcibly offline shader cores just before replay — the
    // first job fails, the replayer resets and re-executes.
    target.inject_fault(FaultKind::OfflineCores { mask: 0xFF });
    let mut io = ReplayIo::for_recording(replayer.recording(id));
    io.set_input_f32(0, &input).unwrap();
    let report = replayer.replay(id, &mut io).unwrap();
    assert!(report.retries >= 1, "fault must have forced a retry");
    assert_eq!(io.output_f32(0).unwrap(), cpu_ref::cpu_infer(&net, &input));

    // Fault 2: corrupt the PTE of the input buffer mid-session; recovery
    // re-populates the page tables.
    target.inject_fault(FaultKind::CorruptPte { va: net.input_va });
    let mut io2 = ReplayIo::for_recording(replayer.recording(id));
    io2.set_input_f32(0, &input).unwrap();
    let report2 = replayer.replay(id, &mut io2).unwrap();
    assert_eq!(io2.output_f32(0).unwrap(), cpu_ref::cpu_infer(&net, &input));
    assert!(report2.retries <= 2);
    replayer.cleanup();
}

/// Cross-SKU (§6.4): a G31 recording replays on G71 only after patching;
/// the affinity patch restores full speed.
#[test]
fn cross_sku_patching_g31_to_g71() {
    let dev = Machine::new(&sku::MALI_G31, 11);
    let mut harness = RecordHarness::new(dev).unwrap();
    let rec = harness.record_vecadd(512, 16_000_000, 13).unwrap();
    harness.finish();

    let a: Vec<f32> = random_input(512, 41);
    let b: Vec<f32> = random_input(512, 42);
    let expected: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();

    let run =
        |rec: &Recording| -> Result<(Vec<f32>, gr_sim::SimDuration), gr_replayer::ReplayError> {
            let target = Machine::new(&sku::MALI_G71, 12);
            let env = Environment::new(EnvKind::UserLevel, target).unwrap();
            let mut replayer = Replayer::new(env);
            let id = replayer.load(rec.clone())?;
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, &a).unwrap();
            io.set_input_f32(1, &b).unwrap();
            let report = replayer.replay(id, &mut io)?;
            let out = io.output_f32(0).unwrap();
            replayer.cleanup();
            Ok((out, report.wall))
        };

    // Unpatched: must fail (wrong GPU id expectation / PTE layout).
    assert!(
        run(&rec).is_err(),
        "unpatched G31 recording must not replay on G71"
    );

    // Pgtable+MMU patch: correct results, reduced speed (1 core).
    let partial = patch_recording(
        &rec,
        &sku::MALI_G31,
        &sku::MALI_G71,
        PatchOptions::without_affinity(),
    )
    .unwrap();
    let (out1, t1) = run(&partial).unwrap();
    assert_eq!(out1, expected);

    // Full patch: correct and faster (8 cores).
    let full = patch_recording(&rec, &sku::MALI_G31, &sku::MALI_G71, PatchOptions::full()).unwrap();
    let (out2, t2) = run(&full).unwrap();
    assert_eq!(out2, expected);
    assert!(
        t2 < t1,
        "affinity patch should speed up replay: {t2} vs {t1}"
    );
}

/// Training: replaying the per-iteration recording in a loop (weights fed
/// back) reduces the loss, mirroring Fig. 4's training flow.
#[test]
fn training_iteration_replays_and_learns() {
    let dev = Machine::new(&sku::MALI_G71, 13);
    let mut harness = RecordHarness::new(dev).unwrap();
    let trec = harness.record_training(15).unwrap();
    let bytes = trec.recording.to_bytes();
    harness.finish();

    let target = Machine::new(&sku::MALI_G71, 14);
    let env = Environment::new(EnvKind::UserLevel, target).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load_bytes(&bytes).unwrap();

    // Synthetic digit, fixed label.
    let img = random_input(28 * 28, 55);
    let label = 3.0f32;
    // Weights start from the recorded initialization.
    let mut w: Vec<Vec<u8>> = trec
        .initial_weights
        .iter()
        .map(|(_, b)| b.clone())
        .collect();

    let loss_of = |probs: &[f32]| -> f32 { -(probs[3].max(1e-12)).ln() };
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for _ in 0..8 {
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, &img).unwrap();
        io.set_input_f32(1, &[label]).unwrap();
        io.inputs[2] = w[0].clone();
        io.inputs[3] = w[1].clone();
        io.inputs[4] = w[2].clone();
        replayer.replay(id, &mut io).unwrap();
        let probs = io.output_f32(0).unwrap();
        // App-side predicate P: extract updated weights, check loss.
        w[0] = io.outputs[1].clone();
        w[1] = io.outputs[2].clone();
        w[2] = io.outputs[3].clone();
        last_loss = loss_of(&probs);
        first_loss.get_or_insert(last_loss);
    }
    let first = first_loss.unwrap();
    assert!(
        last_loss < first,
        "loss should decrease across replayed iterations: {first} -> {last_loss}"
    );
    replayer.cleanup();
}

/// Security: fabricated recordings are rejected by the verifier, and
/// tampered containers fail the integrity check (Table 5 scenarios).
#[test]
fn hostile_recordings_are_rejected() {
    use gr_recording::{Action, RecordingMeta, TimedAction};
    let target = Machine::new(&sku::MALI_G71, 15);
    let env = Environment::new(EnvKind::UserLevel, target).unwrap();
    let mut replayer = Replayer::new(env);

    // Illegal register access.
    let mut evil = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "evil",
    ));
    evil.actions.push(TimedAction::immediate(Action::RegWrite {
        reg: 0x2FFC,
        mask: u32::MAX,
        val: 0xDEAD_BEEF,
    }));
    assert!(matches!(
        replayer.load(evil),
        Err(gr_replayer::ReplayError::Verify(_))
    ));

    // Memory-hungry recording rejected by the cap.
    let mut hog = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "hog",
    ));
    hog.actions.push(TimedAction::immediate(Action::MapGpuMem {
        va: 0,
        pte_flags: vec![0xB; 100_000],
    }));
    assert!(replayer.load(hog).is_err());

    // Bit-flipped container fails integrity.
    let mut ok = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "ok",
    ));
    ok.actions
        .push(TimedAction::immediate(Action::SetGpuPgtable));
    let mut bytes = ok.to_bytes();
    let n = bytes.len();
    bytes[n - 1] ^= 1;
    assert!(matches!(
        replayer.load_bytes(&bytes),
        Err(gr_replayer::ReplayError::Container(_))
    ));
    replayer.cleanup();
}
