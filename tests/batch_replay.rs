//! Batched warm-machine replay: `replay_batch` must be bit-identical to N
//! fresh sequential `replay()` calls on both SKUs (proptest), and §5.4
//! recovery inside a batch must resume cleanly without poisoning later
//! elements.

use std::sync::OnceLock;

use gpureplay::prelude::*;
use gr_gpu::{FaultKind, GpuSku};
use gr_mlfw::cpu_ref;
use gr_mlfw::exec::GpuNetwork;
use gr_sim::SimRng;
use proptest::prelude::*;

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| rng.unit_f64() as f32).collect()
}

struct Recorded {
    bytes: Vec<u8>,
    net: GpuNetwork,
}

fn recorded(sku: &'static GpuSku, seed: u64) -> Recorded {
    let dev = Machine::new(sku, seed);
    let mut harness = RecordHarness::new(dev).unwrap();
    let recs = harness
        .record_inference(&models::mnist(), Granularity::WholeNn, seed)
        .unwrap();
    let bytes = recs.recordings[0].to_bytes();
    harness.finish();
    Recorded {
        bytes,
        net: recs.net,
    }
}

fn mali() -> &'static Recorded {
    static REC: OnceLock<Recorded> = OnceLock::new();
    REC.get_or_init(|| recorded(&sku::MALI_G71, 61))
}

fn v3d() -> &'static Recorded {
    static REC: OnceLock<Recorded> = OnceLock::new();
    REC.get_or_init(|| recorded(&sku::V3D_RPI4, 63))
}

/// DRAM for proptest machines: MNIST maps ~5 MiB, so 32 MiB is ample and
/// keeps the 256-case campaign from memsetting gigabytes.
const TEST_DRAM: usize = 32 * 1024 * 1024;

/// Replays `inputs` as one warm batch and as fresh sequential replays;
/// asserts all three agree (batch == sequential == CPU reference).
fn check_batch_vs_sequential(
    sku_ref: &'static GpuSku,
    env: EnvKind,
    rec: &Recorded,
    inputs: &[Vec<f32>],
    seed: u64,
) {
    // Batched, one warm machine.
    let machine = Machine::with_dram(sku_ref, seed, TEST_DRAM);
    let environment = Environment::new(env, machine).unwrap();
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(&rec.bytes).unwrap();
    let mut ios: Vec<ReplayIo> = inputs
        .iter()
        .map(|input| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, input).unwrap();
            io
        })
        .collect();
    let report = replayer.replay_batch(id, &mut ios).unwrap();
    assert!(report.amortized, "MNIST recordings must admit the split");
    assert_eq!(report.elements, inputs.len());
    replayer.cleanup();

    // Fresh sequential replays on a cold machine with different jitter.
    let machine = Machine::with_dram(sku_ref, seed ^ 0xA5A5, TEST_DRAM);
    let environment = Environment::new(env, machine).unwrap();
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(&rec.bytes).unwrap();
    for (k, input) in inputs.iter().enumerate() {
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.set_input_f32(0, input).unwrap();
        replayer.replay(id, &mut io).unwrap();
        let fresh = io.output_f32(0).unwrap();
        let batched = ios[k].output_f32(0).unwrap();
        assert_eq!(batched, fresh, "element {k}: batch diverged from fresh");
        assert_eq!(
            fresh,
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k}: replay diverged from CPU reference"
        );
    }
    replayer.cleanup();
}

/// Each replayed MNIST inference costs tens of milliseconds in debug
/// builds; cap the campaign at this many (deterministic) cases per
/// property so the tier-1 suite stays fast. Raise locally for deeper runs.
const MAX_HEAVY_CASES: usize = 40;

proptest! {
    #[test]
    fn mali_batch_bit_identical_to_sequential(n in 1usize..5, seed in 0u64..1_000_000) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASES_RUN: AtomicUsize = AtomicUsize::new(0);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) >= MAX_HEAVY_CASES {
            return;
        }
        let rec = mali();
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|k| random_input(rec.net.input_len(), seed.wrapping_add(k as u64 * 7919)))
            .collect();
        check_batch_vs_sequential(&sku::MALI_G71, EnvKind::UserLevel, rec, &inputs, seed | 1);
    }

    #[test]
    fn v3d_batch_bit_identical_to_sequential(n in 1usize..5, seed in 0u64..1_000_000) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASES_RUN: AtomicUsize = AtomicUsize::new(0);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) >= MAX_HEAVY_CASES {
            return;
        }
        let rec = v3d();
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|k| random_input(rec.net.input_len(), seed.wrapping_add(k as u64 * 104729)))
            .collect();
        check_batch_vs_sequential(&sku::V3D_RPI4, EnvKind::KernelLevel, rec, &inputs, seed | 1);
    }
}

/// §5.4 recovery inside a batch: a transient core glitch faults one
/// element's job; the replayer resets, re-runs the prologue to restore
/// warm state, retries that element, and later elements replay untouched.
#[test]
fn fault_mid_batch_recovers_without_poisoning_later_elements() {
    let rec = mali();
    let machine = Machine::new(&sku::MALI_G71, 71);
    let environment = Environment::new(EnvKind::UserLevel, machine.clone()).unwrap();
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(&rec.bytes).unwrap();

    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|k| random_input(rec.net.input_len(), 500 + k))
        .collect();
    let mut ios: Vec<ReplayIo> = inputs
        .iter()
        .map(|input| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, input).unwrap();
            io
        })
        .collect();

    // Armed glitch: the next *started* job fails once, then clears — it
    // will hit the first element's first kick, mid-batch after the warm
    // prologue already ran.
    machine.inject_fault(FaultKind::OfflineCores { mask: 0xFF });
    let report = replayer.replay_batch(id, &mut ios).unwrap();
    assert!(report.amortized);
    assert!(report.retries >= 1, "the glitch must force a §5.4 retry");
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k} poisoned by mid-batch recovery"
        );
    }

    // A corrupted PTE mid-session: recovery rebuilds the tables and the
    // rest of the batch stays correct.
    machine.inject_fault(FaultKind::CorruptPte {
        va: rec.net.input_va,
    });
    let mut ios2: Vec<ReplayIo> = inputs
        .iter()
        .map(|input| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, input).unwrap();
            io
        })
        .collect();
    let report2 = replayer.replay_batch(id, &mut ios2).unwrap();
    assert!(report2.retries >= 1, "corrupt PTE must force recovery");
    for (k, input) in inputs.iter().enumerate() {
        assert_eq!(
            ios2[k].output_f32(0).unwrap(),
            cpu_ref::cpu_infer(&rec.net, input),
            "element {k} poisoned after PTE recovery"
        );
    }
    replayer.cleanup();
}

/// `replay_batch_isolated` attributes a poisoned element's failure to
/// that element alone: batchmates replay bit-exactly and the failed
/// element's outputs come back zeroed (not the caller's stale bytes).
#[test]
fn isolated_batch_attributes_faults_and_zeroes_failed_outputs() {
    use gpureplay::replayer::ReplayError;
    let rec = mali();
    let machine = Machine::new(&sku::MALI_G71, 73);
    let environment = Environment::new(EnvKind::UserLevel, machine).unwrap();
    let mut replayer = Replayer::new(environment);
    let id = replayer.load_bytes(&rec.bytes).unwrap();

    let inputs: Vec<Vec<f32>> = (0..3)
        .map(|k| random_input(rec.net.input_len(), 600 + k))
        .collect();
    let mut ios: Vec<ReplayIo> = inputs
        .iter()
        .map(|input| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, input).unwrap();
            io
        })
        .collect();
    // Poison the middle element: wrong input size, stale output bytes.
    ios[1].inputs[0] = vec![0u8; 3];
    for out in &mut ios[1].outputs {
        out.fill(0xAA);
    }

    let run = replayer.replay_batch_isolated(id, &mut ios).unwrap();
    assert!(run.report.amortized);
    assert_eq!(run.report.elements, 3);
    assert_eq!(run.errors.len(), 1, "exactly one attributed fault");
    assert_eq!(run.errors[0].0, 1, "the poisoned element's index");
    assert!(matches!(run.errors[0].1, ReplayError::Io(_)));
    for (k, input) in inputs.iter().enumerate() {
        if k == 1 {
            for (s, out) in ios[1].outputs.iter().enumerate() {
                assert_eq!(
                    out.len(),
                    replayer.recording(id).outputs[s].len as usize,
                    "failed element keeps recording-shaped outputs"
                );
                assert!(
                    out.iter().all(|&b| b == 0),
                    "failed element's outputs must be zeroed, not stale"
                );
            }
        } else {
            assert_eq!(
                ios[k].output_f32(0).unwrap(),
                cpu_ref::cpu_infer(&rec.net, input),
                "batchmate {k} poisoned by element 1's fault"
            );
        }
    }
    replayer.cleanup();
}

/// Multi-input recordings batch too: every element re-copies all of its
/// input slots in the suffix.
#[test]
fn multi_input_vecadd_batches_correctly() {
    let dev = Machine::new(&sku::MALI_G71, 77);
    let mut harness = RecordHarness::new(dev).unwrap();
    let rec = harness.record_vecadd(64, 64, 5).unwrap();
    harness.finish();

    let target = Machine::new(&sku::MALI_G71, 78);
    let env = Environment::new(EnvKind::UserLevel, target).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load(rec).unwrap();
    let a = random_input(64, 1);
    let b = random_input(64, 2);
    let expected: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    let mut ios: Vec<ReplayIo> = (0..3)
        .map(|_| {
            let mut io = ReplayIo::for_recording(replayer.recording(id));
            io.set_input_f32(0, &a).unwrap();
            io.set_input_f32(1, &b).unwrap();
            io
        })
        .collect();
    let report = replayer.replay_batch(id, &mut ios).unwrap();
    assert_eq!(report.elements, 3);
    for io in &ios {
        assert_eq!(io.output_f32(0).unwrap(), expected);
    }
    replayer.cleanup();
}

/// Dead-upload elision: a dump fully overwritten by the input copy before
/// any job is skipped at replay — same outputs, strictly less virtual
/// time than the identical recording where the upload stays live.
#[test]
fn dead_upload_is_elided_at_replay() {
    use gpureplay::recording::{Action, Dump, IoSlot, RecordingMeta, TimedAction};
    const PAGES: usize = 256; // 1 MiB dump => ~0.5 ms upload at 2 GB/s
    let build = |keep_alive: bool| {
        let mut rec = Recording::new(RecordingMeta::new(
            "mali",
            "G71",
            sku::MALI_G71.gpu_id,
            "dead-upload",
        ));
        rec.actions.push(TimedAction::immediate(Action::MapGpuMem {
            va: 0x10_0000,
            pte_flags: vec![0xF; PAGES],
        }));
        rec.dumps.push(Dump {
            va: 0x10_0000,
            bytes: vec![0xEE; PAGES * 4096],
        });
        rec.inputs.push(IoSlot {
            name: "in".into(),
            va: 0x10_0000,
            len: (PAGES * 4096) as u32,
        });
        rec.outputs.push(IoSlot {
            name: "out".into(),
            va: 0x10_0000,
            len: 64,
        });
        rec.actions
            .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));
        if keep_alive {
            // A register read between upload and input copy could observe
            // the uploaded bytes: the verifier must keep the upload live.
            rec.actions
                .push(TimedAction::immediate(Action::RegReadOnce {
                    reg: 0, // GPU_ID
                    expect: sku::MALI_G71.gpu_id,
                    ignore: false,
                }));
        }
        rec.actions
            .push(TimedAction::immediate(Action::CopyToGpu { slot: 0 }));
        rec.actions
            .push(TimedAction::immediate(Action::CopyFromGpu { slot: 0 }));
        rec
    };
    let run = |keep_alive: bool| {
        let machine = Machine::new(&sku::MALI_G71, 91);
        let env = Environment::new(EnvKind::UserLevel, machine).unwrap();
        let mut replayer = Replayer::new(env);
        let id = replayer.load(build(keep_alive)).unwrap();
        let mut io = ReplayIo::for_recording(replayer.recording(id));
        io.inputs[0] = (0..PAGES * 4096).map(|i| i as u8).collect();
        let report = replayer.replay(id, &mut io).unwrap();
        // The input copy always wins over the (possibly elided) upload.
        assert_eq!(&io.outputs[0][..4], &[0, 1, 2, 3]);
        replayer.cleanup();
        report.wall
    };
    let live = run(true);
    let dead = run(false);
    assert!(
        live.as_nanos() > dead.as_nanos() + 400_000,
        "eliding a 1 MiB dead upload must save its ~0.5 ms transfer: live {live}, dead {dead}"
    );
}

/// A recording with no `CopyToGpu` has nothing to amortize per element:
/// `replay_batch` falls back to full per-element replays.
#[test]
fn unbatchable_recording_falls_back_to_full_replays() {
    use gpureplay::recording::{Action, Dump, RecordingMeta, TimedAction};
    let mut rec = Recording::new(RecordingMeta::new(
        "mali",
        "G71",
        sku::MALI_G71.gpu_id,
        "fallback",
    ));
    rec.actions.push(TimedAction::immediate(Action::MapGpuMem {
        va: 0x10_0000,
        pte_flags: vec![0xF],
    }));
    rec.dumps.push(Dump {
        va: 0x10_0000,
        bytes: vec![7u8; 64],
    });
    rec.actions
        .push(TimedAction::immediate(Action::Upload { dump_idx: 0 }));

    let machine = Machine::new(&sku::MALI_G71, 81);
    let env = Environment::new(EnvKind::UserLevel, machine).unwrap();
    let mut replayer = Replayer::new(env);
    let id = replayer.load(rec).unwrap();
    let mut ios = vec![ReplayIo::default(), ReplayIo::default()];
    let report = replayer.replay_batch(id, &mut ios).unwrap();
    assert!(!report.amortized, "no input copy, nothing to amortize");
    assert_eq!(report.elements, 2);
    assert_eq!(report.prologue_actions, 0);
    replayer.cleanup();
}
